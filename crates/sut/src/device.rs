//! Device performance models.

use mlperf_loadgen::time::Nanos;
use mlperf_stats::dist::LogNormal;
use mlperf_stats::Rng64;

/// Processor architecture classes of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Architecture {
    /// General-purpose CPU.
    Cpu,
    /// Programmable GPU.
    Gpu,
    /// Digital signal processor.
    Dsp,
    /// Field-programmable gate array.
    Fpga,
    /// Fixed-function inference accelerator.
    Asic,
}

impl Architecture {
    /// All classes, in Figure 7 order.
    pub const ALL: [Architecture; 5] = [
        Architecture::Dsp,
        Architecture::Fpga,
        Architecture::Cpu,
        Architecture::Asic,
        Architecture::Gpu,
    ];
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Architecture::Cpu => "CPU",
            Architecture::Gpu => "GPU",
            Architecture::Dsp => "DSP",
            Architecture::Fpga => "FPGA",
            Architecture::Asic => "ASIC",
        };
        f.write_str(s)
    }
}

/// Transient performance boost that decays to steady state — the
/// DVFS/thermal behaviour the 60-second minimum-duration rule is designed
/// to see through (Section III-D).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Initial throughput multiplier (> 1 means a cold-start boost).
    pub boost: f64,
    /// Exponential decay constant of the boost, in seconds.
    pub decay_secs: f64,
}

impl ThermalModel {
    /// Throughput multiplier at simulated time `now`.
    pub fn multiplier(&self, now: Nanos) -> f64 {
        1.0 + (self.boost - 1.0) * (-now.as_secs_f64() / self.decay_secs).exp()
    }
}

/// A simulated inference device.
///
/// Utilization saturates with the **work per dispatch** rather than the
/// sample count: a 433-GOPS SSD-ResNet-34 image fills a datacenter GPU at
/// batch 1, while a 1.1-GOPS MobileNet image needs dozens of batch-mates
/// to reach the same occupancy — exactly the dynamic behind the paper's
/// observation that "most inference systems require a minimum
/// (architecture-specific) batch size to fully utilize the underlying
/// computational resources" (Section III-C):
///
/// ```text
/// t = overhead + work / (peak_gops * util(work) * thermal(now)) * jitter
/// util(work) = work / (work + work_half)
/// ```
///
/// `work_half` is the dispatch size (GOPS) at which the device reaches half
/// of its peak: near zero for latency-oriented silicon (CPUs, DSPs, small
/// ASICs), tens of GOPS for throughput-oriented GPUs.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Device name (unique within the fleet).
    pub name: String,
    /// Architecture class.
    pub architecture: Architecture,
    /// Peak sustained throughput per execution unit, GOPS.
    pub peak_gops: f64,
    /// Work per dispatch (GOPS) at which utilization reaches one half.
    pub work_half_gops: f64,
    /// Largest batch one unit executes at once (memory limit).
    pub max_batch: usize,
    /// Number of independent execution units (accelerator cards, chips).
    pub units: usize,
    /// Fixed per-dispatch overhead (kernel launch, DMA, scheduling).
    pub overhead: Nanos,
    /// Log-normal sigma of multiplicative service-time jitter.
    pub jitter_sigma: f64,
    /// Optional cold-start boost / thermal throttle.
    pub thermal: Option<ThermalModel>,
}

impl DeviceSpec {
    /// Creates a spec with no jitter and no thermal model; builder-style
    /// `with_*` methods refine it.
    ///
    /// # Panics
    ///
    /// Panics if any magnitude is non-positive.
    pub fn new(
        name: &str,
        architecture: Architecture,
        peak_gops: f64,
        work_half_gops: f64,
        max_batch: usize,
        units: usize,
        overhead: Nanos,
    ) -> Self {
        assert!(peak_gops > 0.0, "peak throughput must be positive");
        assert!(work_half_gops >= 0.0, "work_half must be non-negative");
        assert!(max_batch > 0, "max_batch must be positive");
        assert!(units > 0, "units must be positive");
        Self {
            name: name.to_string(),
            architecture,
            peak_gops,
            work_half_gops,
            max_batch,
            units,
            overhead,
            jitter_sigma: 0.0,
            thermal: None,
        }
    }

    /// Adds service-time jitter.
    pub fn with_jitter(mut self, sigma: f64) -> Self {
        self.jitter_sigma = sigma;
        self
    }

    /// Adds a thermal boost model.
    pub fn with_thermal(mut self, thermal: ThermalModel) -> Self {
        self.thermal = Some(thermal);
        self
    }

    /// Returns a copy whose `work_half` is scaled for a workload's
    /// arithmetic intensity: small-kernel models (MobileNet) saturate a
    /// device with less total work per dispatch than giant-kernel models
    /// (SSD-ResNet-34). The scale is `sqrt(ops_per_input / 8.2)` — ResNet-50
    /// is the reference point — clamped to `[0.2, 8]`. A modeling choice,
    /// documented in DESIGN.md.
    pub fn tuned_for(&self, ops_per_input_gops: f64) -> DeviceSpec {
        let factor = (ops_per_input_gops / 8.2).sqrt().clamp(0.2, 8.0);
        let mut tuned = self.clone();
        tuned.work_half_gops *= factor;
        tuned
    }

    /// Utilization fraction in `(0, 1)` for a dispatch of `work_gops`.
    pub fn utilization(&self, work_gops: f64) -> f64 {
        let w = work_gops.max(1e-9);
        w / (w + self.work_half_gops)
    }

    /// Service time for one dispatch of `work_gops` operations (already
    /// padded if the workload pads), starting at `now`. `batch` only
    /// documents the dispatch; timing is work-driven.
    pub fn service_time(
        &self,
        work_gops: f64,
        _batch: usize,
        now: Nanos,
        rng: &mut Rng64,
    ) -> Nanos {
        let thermal = self.thermal.map_or(1.0, |t| t.multiplier(now));
        let throughput = self.peak_gops * self.utilization(work_gops) * thermal;
        let mut secs = work_gops / throughput;
        if self.jitter_sigma > 0.0 {
            let jitter = LogNormal::jitter(self.jitter_sigma)
                .expect("sigma validated non-negative")
                .sample(rng);
            secs *= jitter;
        }
        self.overhead + Nanos::from_secs_f64(secs)
    }

    /// Latency of a single sample costing `ops_gops`, at steady state and
    /// without jitter — the capability precheck used by round planning.
    pub fn batch1_latency(&self, ops_gops: f64) -> Nanos {
        let secs = ops_gops / (self.peak_gops * self.utilization(ops_gops));
        self.overhead + Nanos::from_secs_f64(secs)
    }

    /// Asymptotic samples/second at deep batches for a per-sample cost.
    pub fn peak_throughput(&self, ops_per_sample_gops: f64) -> f64 {
        let full_batch_work = ops_per_sample_gops * self.max_batch as f64;
        self.units as f64 * self.peak_gops * self.utilization(full_batch_work) / ops_per_sample_gops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> DeviceSpec {
        DeviceSpec::new(
            "test-gpu",
            Architecture::Gpu,
            1_000.0,
            20.0,
            64,
            1,
            Nanos::from_micros(100),
        )
    }

    #[test]
    fn utilization_monotone_in_work() {
        let d = gpu();
        let mut prev = 0.0;
        for w in [0.5, 1.0, 5.0, 20.0, 100.0, 1_000.0] {
            let u = d.utilization(w);
            assert!(u > prev, "utilization must grow with work");
            assert!(u < 1.0);
            prev = u;
        }
        assert!(
            (d.utilization(20.0) - 0.5).abs() < 1e-12,
            "half at work_half"
        );
    }

    #[test]
    fn zero_work_half_means_latency_optimized() {
        let d = DeviceSpec::new("asic", Architecture::Asic, 100.0, 0.0, 8, 1, Nanos::ZERO);
        assert!(d.utilization(0.1) > 0.999_999);
        assert!(d.utilization(100.0) > 0.999_999);
    }

    #[test]
    fn heavy_models_saturate_at_batch_one() {
        // One SSD-ResNet-34 image (433 GOPS) almost fills the GPU; one
        // MobileNet image (1.1 GOPS) barely wakes it up.
        let d = gpu();
        assert!(d.utilization(433.0) > 0.9);
        assert!(d.utilization(1.138) < 0.1);
    }

    #[test]
    fn service_time_scales_with_work() {
        let d = DeviceSpec::new(
            "lin",
            Architecture::Cpu,
            100.0,
            0.0,
            8,
            1,
            Nanos::from_micros(100),
        );
        let mut rng = Rng64::new(1);
        let t1 = d.service_time(10.0, 1, Nanos::ZERO, &mut rng);
        let t2 = d.service_time(20.0, 1, Nanos::ZERO, &mut rng);
        assert_eq!(t1, Nanos::from_millis(100) + Nanos::from_micros(100));
        assert_eq!(t2, Nanos::from_millis(200) + Nanos::from_micros(100));
    }

    #[test]
    fn batched_work_is_cheaper_per_sample() {
        // 32 MobileNet samples in one dispatch vs 32 separate dispatches.
        let d = gpu();
        let mut rng = Rng64::new(2);
        let per_sample = 1.138;
        let t_batch = d.service_time(per_sample * 32.0, 32, Nanos::ZERO, &mut rng);
        let t_single = d.service_time(per_sample, 1, Nanos::ZERO, &mut rng);
        assert!(
            t_batch.as_secs_f64() < 32.0 * t_single.as_secs_f64() / 4.0,
            "batching should be at least 4x more efficient: {t_batch} vs 32x{t_single}"
        );
    }

    #[test]
    fn jitter_perturbs_but_preserves_scale() {
        let d =
            DeviceSpec::new("j", Architecture::Cpu, 100.0, 0.0, 8, 1, Nanos::ZERO).with_jitter(0.1);
        let mut rng = Rng64::new(3);
        let times: Vec<Nanos> = (0..200)
            .map(|_| d.service_time(10.0, 1, Nanos::ZERO, &mut rng))
            .collect();
        let distinct: std::collections::HashSet<u64> = times.iter().map(|t| t.as_nanos()).collect();
        assert!(distinct.len() > 100, "jitter should vary service times");
        let mean = times.iter().map(|t| t.as_secs_f64()).sum::<f64>() / times.len() as f64;
        assert!((mean - 0.1).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn thermal_boost_decays() {
        let t = ThermalModel {
            boost: 1.5,
            decay_secs: 10.0,
        };
        assert!((t.multiplier(Nanos::ZERO) - 1.5).abs() < 1e-12);
        let mid = t.multiplier(Nanos::from_secs(10));
        assert!(mid > 1.1 && mid < 1.25);
        assert!((t.multiplier(Nanos::from_secs(120)) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn thermal_makes_early_queries_faster() {
        let d = gpu().with_thermal(ThermalModel {
            boost: 1.4,
            decay_secs: 5.0,
        });
        let mut rng = Rng64::new(4);
        let early = d.service_time(100.0, 1, Nanos::ZERO, &mut rng);
        let late = d.service_time(100.0, 1, Nanos::from_secs(60), &mut rng);
        assert!(early < late, "{early} vs {late}");
    }

    #[test]
    fn batch1_latency_matches_service_time_without_jitter() {
        let d = gpu();
        let mut rng = Rng64::new(5);
        assert_eq!(
            d.batch1_latency(8.2),
            d.service_time(8.2, 1, Nanos::ZERO, &mut rng)
        );
    }

    #[test]
    fn peak_throughput_counts_units_and_saturation() {
        let mut d = gpu();
        d.units = 4;
        // Deep batches of ResNet work: 64 * 8.2 = 525 GOPS per dispatch,
        // util ~0.963.
        let tp = d.peak_throughput(8.2);
        let expected = 4.0 * 1_000.0 * (525.0 / 545.0) / 8.2;
        assert!(
            (tp / expected - 1.0).abs() < 0.01,
            "tp={tp} expected={expected}"
        );
    }

    #[test]
    #[should_panic(expected = "peak throughput")]
    fn zero_peak_panics() {
        DeviceSpec::new("bad", Architecture::Cpu, 0.0, 1.0, 1, 1, Nanos::ZERO);
    }

    #[test]
    fn architecture_display() {
        assert_eq!(Architecture::Gpu.to_string(), "GPU");
        assert_eq!(Architecture::ALL.len(), 5);
    }
}

//! Simulated systems under test.
//!
//! The paper's 600+ submissions came from real hardware spanning "four
//! orders of magnitude" of performance (Section VI-D). This crate is that
//! fleet's stand-in: queueing/roofline device models driven by the real
//! per-input operation counts of Table I, exercised through the LoadGen's
//! [`SimSut`](mlperf_loadgen::sut::SimSut) interface.
//!
//! * [`device`] — [`device::DeviceSpec`]: peak throughput,
//!   batching-efficiency curve, per-query overhead, log-normal jitter, and
//!   an optional thermal boost/throttle model (why the 60-second
//!   minimum-duration rule exists).
//! * [`engine`] — [`engine::DeviceSut`]: the execution engine.
//!   `Immediate` runs queries as they arrive (single-stream, multistream,
//!   offline); `DynamicBatch` accumulates server queries up to a batch size
//!   or timeout — the mechanism behind the paper's server-vs-offline
//!   throughput gap (Figure 6).
//! * [`fleet`](mod@fleet) — named device presets from embedded DSPs to multi-GPU
//!   servers, with the vendor/framework metadata the submission round uses
//!   (Tables VI–VII, Figures 5–8).
//! * [`proxy_sut`] — SUTs whose payloads come from the runnable proxy
//!   models, for accuracy mode and the audit tests.
//! * [`cheats`] — deliberately rule-breaking SUTs (result caching, seed
//!   sniffing, accuracy corner-cutting, silent query dropping) that the
//!   audit suite must catch.
//! * [`faults`] — seeded fault injection ([`faults::FaultPlan`] /
//!   [`faults::FaultySut`]): transient errors, latency spikes, stalls,
//!   sustained throttling, and hard device death, layered over any engine.
//! * [`resilience`] — recovery policies ([`resilience::ResilientSut`]):
//!   per-query timeout, bounded retry with backoff, failover to a sibling
//!   device, and priority-ordered load shedding.
//! * [`shard`] — fleet-scale routing ([`shard::ShardedSut`]): one
//!   scenario's traffic fanned across N wall-clock endpoints under
//!   pluggable balancing policies, with per-shard health tracking
//!   (Up → Suspect → Down → Draining) and cross-shard failover.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cheats;
pub mod device;
pub mod engine;
pub mod faults;
pub mod fleet;
pub mod proxy_sut;
pub mod resilience;
pub mod shard;

pub use device::{Architecture, DeviceSpec, ThermalModel};
pub use engine::{BatchPolicy, DeviceSut};
pub use faults::{FaultPlan, FaultySut, StallWindow, ThrottleEpisode};
pub use fleet::{fleet, FleetSystem};
pub use resilience::{ResiliencePolicy, ResilientSut};
pub use shard::{
    BalancePolicy, ShardConfig, ShardEndpoint, ShardHealth, ShardProbe, ShardStatus, ShardedSut,
};

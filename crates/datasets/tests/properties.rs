//! Property-style tests for the synthetic datasets.
//!
//! Seeded `Rng64` case loops replace the former property-testing
//! framework; failure messages carry the case parameters for replay.

use mlperf_datasets::{SampleTracker, SyntheticImages, SyntheticSentences};
use mlperf_stats::Rng64;
use mlperf_tensor::Shape;

const CASES: u64 = 24;

#[test]
fn images_are_pure_functions() {
    let mut rng = Rng64::new(0x4453_0001);
    for case in 0..CASES {
        let seed = rng.next_u64();
        let len = 1 + rng.next_index(63);
        let index = rng.next_index(len);
        let a = SyntheticImages::new(Shape::d3(2, 8, 8), len, seed);
        let b = SyntheticImages::new(Shape::d3(2, 8, 8), len, seed);
        assert_eq!(
            a.input(index).unwrap(),
            b.input(index).unwrap(),
            "case {case}: seed={seed} len={len} index={index}"
        );
    }
}

#[test]
fn image_values_bounded_and_finite() {
    let mut rng = Rng64::new(0x4453_0002);
    for case in 0..CASES {
        let seed = rng.next_u64();
        let index = rng.next_index(16);
        let ds = SyntheticImages::new(Shape::d3(3, 8, 8), 16, seed);
        let img = ds.input(index).unwrap();
        let ctx = format!("case {case}: seed={seed} index={index}");
        assert!(img.data().iter().all(|v| v.is_finite()), "{ctx}");
        assert!(img.abs_max() <= 2.4, "{ctx}: abs_max={}", img.abs_max());
    }
}

#[test]
fn different_indices_differ() {
    let mut rng = Rng64::new(0x4453_0003);
    for case in 0..CASES {
        let seed = rng.next_u64();
        let a = rng.next_index(32);
        let b = rng.next_index(32);
        if a == b {
            continue;
        }
        let ds = SyntheticImages::new(Shape::d3(1, 8, 8), 32, seed);
        assert_ne!(
            ds.input(a).unwrap(),
            ds.input(b).unwrap(),
            "case {case}: seed={seed} a={a} b={b}"
        );
    }
}

#[test]
fn sentences_deterministic_and_in_vocab() {
    let mut rng = Rng64::new(0x4453_0004);
    for case in 0..CASES {
        let seed = rng.next_u64();
        let vocab = 2 + rng.next_below(498) as u32;
        let index = rng.next_index(64);
        let ctx = format!("case {case}: seed={seed} vocab={vocab} index={index}");
        let c = SyntheticSentences::new(vocab, 64, seed, 2, 20);
        let s1 = c.sentence(index).unwrap();
        let s2 = c.sentence(index).unwrap();
        assert_eq!(&s1, &s2, "{ctx}");
        assert!(s1.iter().all(|t| *t < vocab), "{ctx}");
        assert!((2..=20).contains(&s1.len()), "{ctx}: len={}", s1.len());
        assert_eq!(c.sentence_length(index).unwrap(), s1.len(), "{ctx}");
    }
}

#[test]
fn tracker_load_access_unload_invariants() {
    let mut rng = Rng64::new(0x4453_0005);
    for case in 0..CASES {
        let op_count = 1 + rng.next_index(99);
        let mut t = SampleTracker::new(64);
        let mut model: std::collections::HashSet<usize> = Default::default();
        for step in 0..op_count {
            let idx = rng.next_index(64);
            let op = rng.next_below(3) as u8;
            let ctx = format!("case {case} step {step}: idx={idx} op={op}");
            match op {
                0 => {
                    t.load(&[idx]).unwrap();
                    model.insert(idx);
                }
                1 => {
                    t.unload(&[idx]);
                    model.remove(&idx);
                }
                _ => {
                    assert_eq!(t.access(idx).is_ok(), model.contains(&idx), "{ctx}");
                }
            }
            assert_eq!(t.resident(), model.len(), "{ctx}");
            assert!(t.peak_resident() >= t.resident(), "{ctx}");
        }
    }
}

#[test]
fn tracker_rejects_out_of_range_loads() {
    let mut rng = Rng64::new(0x4453_0006);
    for case in 0..CASES {
        let total = 1 + rng.next_index(99);
        let beyond = rng.next_index(50);
        let mut t = SampleTracker::new(total);
        assert!(
            t.load(&[total + beyond]).is_err(),
            "case {case}: total={total} beyond={beyond}"
        );
        assert_eq!(t.resident(), 0, "case {case}");
    }
}

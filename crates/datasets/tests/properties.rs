//! Property-based tests for the synthetic datasets.

use mlperf_datasets::{SampleTracker, SyntheticImages, SyntheticSentences};
use mlperf_tensor::Shape;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn images_are_pure_functions(seed in any::<u64>(), len in 1usize..64, index in 0usize..64) {
        prop_assume!(index < len);
        let a = SyntheticImages::new(Shape::d3(2, 8, 8), len, seed);
        let b = SyntheticImages::new(Shape::d3(2, 8, 8), len, seed);
        prop_assert_eq!(a.input(index).unwrap(), b.input(index).unwrap());
    }

    #[test]
    fn image_values_bounded_and_finite(seed in any::<u64>(), index in 0usize..16) {
        let ds = SyntheticImages::new(Shape::d3(3, 8, 8), 16, seed);
        let img = ds.input(index).unwrap();
        prop_assert!(img.data().iter().all(|v| v.is_finite()));
        prop_assert!(img.abs_max() <= 2.4);
    }

    #[test]
    fn different_indices_differ(seed in any::<u64>(), a in 0usize..32, b in 0usize..32) {
        prop_assume!(a != b);
        let ds = SyntheticImages::new(Shape::d3(1, 8, 8), 32, seed);
        prop_assert_ne!(ds.input(a).unwrap(), ds.input(b).unwrap());
    }

    #[test]
    fn sentences_deterministic_and_in_vocab(
        seed in any::<u64>(),
        vocab in 2u32..500,
        index in 0usize..64,
    ) {
        let c = SyntheticSentences::new(vocab, 64, seed, 2, 20);
        let s1 = c.sentence(index).unwrap();
        let s2 = c.sentence(index).unwrap();
        prop_assert_eq!(&s1, &s2);
        prop_assert!(s1.iter().all(|t| *t < vocab));
        prop_assert!((2..=20).contains(&s1.len()));
        prop_assert_eq!(c.sentence_length(index).unwrap(), s1.len());
    }

    #[test]
    fn tracker_load_access_unload_invariants(
        ops in prop::collection::vec((0usize..64, 0u8..3), 1..100)
    ) {
        let mut t = SampleTracker::new(64);
        let mut model: std::collections::HashSet<usize> = Default::default();
        for (idx, op) in ops {
            match op {
                0 => {
                    t.load(&[idx]).unwrap();
                    model.insert(idx);
                }
                1 => {
                    t.unload(&[idx]);
                    model.remove(&idx);
                }
                _ => {
                    prop_assert_eq!(t.access(idx).is_ok(), model.contains(&idx));
                }
            }
            prop_assert_eq!(t.resident(), model.len());
            prop_assert!(t.peak_resident() >= t.resident());
        }
    }

    #[test]
    fn tracker_rejects_out_of_range_loads(total in 1usize..100, beyond in 0usize..50) {
        let mut t = SampleTracker::new(total);
        prop_assert!(t.load(&[total + beyond]).is_err());
        prop_assert_eq!(t.resident(), 0);
    }
}

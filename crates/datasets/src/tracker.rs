//! QSL load/unload accounting.
//!
//! At startup "the LoadGen requests that the SUT load data-set samples into
//! memory" as an untimed operation (Section IV-B). The tracker enforces the
//! contract: queries may only reference loaded samples, and the loaded set
//! is bounded by the QSL's `performance_sample_count`.

use crate::DatasetError;
use std::collections::HashSet;

/// Tracks which sample indices are currently resident.
///
/// # Examples
///
/// ```
/// use mlperf_datasets::SampleTracker;
///
/// let mut t = SampleTracker::new(1000);
/// t.load(&[3, 5, 7])?;
/// assert!(t.is_loaded(5));
/// t.access(5)?;
/// t.unload(&[5]);
/// assert!(t.access(5).is_err());
/// # Ok::<(), mlperf_datasets::DatasetError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SampleTracker {
    total: usize,
    loaded: HashSet<usize>,
    peak_resident: usize,
    load_calls: u64,
    accesses: u64,
}

impl SampleTracker {
    /// Creates a tracker for a dataset of `total` samples.
    pub fn new(total: usize) -> Self {
        Self {
            total,
            ..Self::default()
        }
    }

    /// Marks samples as loaded.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::IndexOutOfRange`] if any index exceeds the
    /// dataset length; no indices are loaded in that case.
    pub fn load(&mut self, indices: &[usize]) -> Result<(), DatasetError> {
        if let Some(bad) = indices.iter().find(|i| **i >= self.total) {
            return Err(DatasetError::IndexOutOfRange {
                index: *bad,
                len: self.total,
            });
        }
        self.load_calls += 1;
        self.loaded.extend(indices.iter().copied());
        self.peak_resident = self.peak_resident.max(self.loaded.len());
        Ok(())
    }

    /// Marks samples as unloaded (unknown indices are ignored).
    pub fn unload(&mut self, indices: &[usize]) {
        for i in indices {
            self.loaded.remove(i);
        }
    }

    /// Whether a sample is currently resident.
    pub fn is_loaded(&self, index: usize) -> bool {
        self.loaded.contains(&index)
    }

    /// Records an access, enforcing residency.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::SampleNotLoaded`] for non-resident samples.
    pub fn access(&mut self, index: usize) -> Result<(), DatasetError> {
        if !self.loaded.contains(&index) {
            return Err(DatasetError::SampleNotLoaded(index));
        }
        self.accesses += 1;
        Ok(())
    }

    /// Number of currently resident samples.
    pub fn resident(&self) -> usize {
        self.loaded.len()
    }

    /// Largest resident set seen.
    pub fn peak_resident(&self) -> usize {
        self.peak_resident
    }

    /// Number of `load` calls.
    pub fn load_calls(&self) -> u64 {
        self.load_calls
    }

    /// Number of successful accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_access_unload_cycle() {
        let mut t = SampleTracker::new(10);
        t.load(&[1, 2, 3]).unwrap();
        assert_eq!(t.resident(), 3);
        t.access(2).unwrap();
        t.unload(&[2]);
        assert_eq!(t.resident(), 2);
        assert!(matches!(t.access(2), Err(DatasetError::SampleNotLoaded(2))));
        assert_eq!(t.accesses(), 1);
    }

    #[test]
    fn load_rejects_out_of_range_atomically() {
        let mut t = SampleTracker::new(5);
        assert!(t.load(&[1, 9]).is_err());
        assert_eq!(t.resident(), 0, "failed load must not partially apply");
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut t = SampleTracker::new(10);
        t.load(&[0, 1, 2, 3]).unwrap();
        t.unload(&[0, 1, 2, 3]);
        t.load(&[4]).unwrap();
        assert_eq!(t.peak_resident(), 4);
        assert_eq!(t.load_calls(), 2);
    }

    #[test]
    fn duplicate_loads_idempotent() {
        let mut t = SampleTracker::new(10);
        t.load(&[1, 1, 1]).unwrap();
        assert_eq!(t.resident(), 1);
    }

    #[test]
    fn unload_unknown_is_noop() {
        let mut t = SampleTracker::new(3);
        t.unload(&[7]);
        assert_eq!(t.resident(), 0);
    }
}

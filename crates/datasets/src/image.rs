//! Synthetic image datasets (ImageNet / COCO stand-ins).

use crate::DatasetError;
use mlperf_stats::Rng64;
use mlperf_tensor::{Shape, Tensor};

/// A deterministic, lazily materialized image dataset.
///
/// Every sample is a smooth random field: a per-index seeded mixture of a few
/// low-frequency sinusoids plus white noise, normalized to roughly
/// `[-1, 1]`. There is nothing to recognize in these images by design — the
/// teacher network *defines* the labels (see `mlperf-models`) — but the
/// statistics (smooth structure + noise, bounded range) are what convolution
/// and quantization care about.
///
/// # Examples
///
/// ```
/// use mlperf_datasets::SyntheticImages;
/// use mlperf_tensor::Shape;
///
/// let ds = SyntheticImages::new(Shape::d3(3, 16, 16), 100, 42);
/// let a = ds.input(5)?;
/// let b = ds.input(5)?;
/// assert_eq!(a, b); // pure function of (seed, index)
/// # Ok::<(), mlperf_datasets::DatasetError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticImages {
    shape: Shape,
    len: usize,
    seed: u64,
    noise: f32,
}

impl SyntheticImages {
    /// Creates a dataset of `len` images of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or the shape is not rank 3.
    pub fn new(shape: Shape, len: usize, seed: u64) -> Self {
        assert!(len > 0, "dataset must be non-empty");
        assert_eq!(shape.rank(), 3, "images are [C, H, W]");
        Self {
            shape,
            len,
            seed,
            noise: 0.25,
        }
    }

    /// Overrides the white-noise amplitude (default 0.25).
    pub fn with_noise(mut self, noise: f32) -> Self {
        self.noise = noise;
        self
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the dataset is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The per-sample tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Materializes sample `index`.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::IndexOutOfRange`] if `index >= len`.
    pub fn input(&self, index: usize) -> Result<Tensor, DatasetError> {
        if index >= self.len {
            return Err(DatasetError::IndexOutOfRange {
                index,
                len: self.len,
            });
        }
        let mut rng = Rng64::new(self.seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // Three random plane waves per channel.
        let dims = self.shape.dims();
        let (c, h, w) = (dims[0], dims[1], dims[2]);
        let mut waves = Vec::with_capacity(c * 3);
        for _ in 0..c * 3 {
            let fx = rng.next_f64() as f32 * 0.8 + 0.1;
            let fy = rng.next_f64() as f32 * 0.8 + 0.1;
            let phase = rng.next_f64() as f32 * std::f32::consts::TAU;
            let amp = rng.next_f64() as f32 * 0.5 + 0.2;
            waves.push((fx, fy, phase, amp));
        }
        let noise = self.noise;
        Ok(Tensor::fill_with(self.shape.clone(), |idx| {
            let (ch, y, x) = (idx[0], idx[1] as f32, idx[2] as f32);
            let mut v = 0.0f32;
            for (fx, fy, phase, amp) in &waves[ch * 3..ch * 3 + 3] {
                v += amp
                    * (fx * x / w as f32 * std::f32::consts::TAU
                        + fy * y / h as f32 * std::f32::consts::TAU
                        + phase)
                        .sin();
            }
            v + (rng.next_f64() as f32 * 2.0 - 1.0) * noise
        }))
    }

    /// The fixed calibration subset: the first `n` indices, mirroring the
    /// paper's "small, fixed data set that can be used to calibrate".
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the dataset length.
    pub fn calibration_indices(&self, n: usize) -> Vec<usize> {
        assert!(n <= self.len, "calibration subset larger than dataset");
        (0..n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> SyntheticImages {
        SyntheticImages::new(Shape::d3(2, 8, 8), 50, 7)
    }

    #[test]
    fn deterministic_per_index() {
        let d = ds();
        assert_eq!(d.input(3).unwrap(), d.input(3).unwrap());
    }

    #[test]
    fn distinct_indices_distinct_images() {
        let d = ds();
        assert_ne!(d.input(3).unwrap(), d.input(4).unwrap());
    }

    #[test]
    fn distinct_seeds_distinct_images() {
        let a = SyntheticImages::new(Shape::d3(2, 8, 8), 10, 1);
        let b = SyntheticImages::new(Shape::d3(2, 8, 8), 10, 2);
        assert_ne!(a.input(0).unwrap(), b.input(0).unwrap());
    }

    #[test]
    fn values_bounded() {
        let d = ds();
        for i in 0..10 {
            let img = d.input(i).unwrap();
            // 3 waves of amplitude <=0.7 plus 0.25 noise: |v| <= 2.35.
            assert!(img.abs_max() <= 2.4, "image {i} out of range");
        }
    }

    #[test]
    fn index_out_of_range() {
        assert!(matches!(
            ds().input(50),
            Err(DatasetError::IndexOutOfRange { index: 50, len: 50 })
        ));
    }

    #[test]
    fn calibration_subset_is_prefix() {
        assert_eq!(ds().calibration_indices(4), vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "larger than dataset")]
    fn oversized_calibration_panics() {
        ds().calibration_indices(51);
    }

    #[test]
    fn noise_override_changes_images() {
        let base = SyntheticImages::new(Shape::d3(1, 8, 8), 5, 3);
        let quiet = base.clone().with_noise(0.0);
        assert_ne!(base.input(0).unwrap(), quiet.input(0).unwrap());
    }
}

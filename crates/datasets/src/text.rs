//! Synthetic sentence corpus (WMT16 EN-DE stand-in).

use crate::DatasetError;
use mlperf_stats::Rng64;

/// A deterministic corpus of variable-length token sequences.
///
/// Sentence lengths follow a truncated geometric-like distribution seeded per
/// index, which gives the GNMT proxy the property the paper calls out in
/// Section VI-B: *variable text input* makes batching and latency behaviour
/// more complex than for fixed-size vision inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSentences {
    vocab_size: u32,
    len: usize,
    seed: u64,
    min_len: usize,
    max_len: usize,
    continuation: f64,
}

impl SyntheticSentences {
    /// Creates a corpus of `len` sentences over a vocabulary of
    /// `vocab_size` tokens with lengths in `[min_len, max_len]`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`, `vocab_size == 0`, `min_len == 0`, or
    /// `min_len > max_len`.
    pub fn new(vocab_size: u32, len: usize, seed: u64, min_len: usize, max_len: usize) -> Self {
        assert!(len > 0, "corpus must be non-empty");
        assert!(vocab_size > 0, "vocabulary must be non-empty");
        assert!(
            min_len > 0 && min_len <= max_len,
            "invalid length range [{min_len}, {max_len}]"
        );
        Self {
            vocab_size,
            len,
            seed,
            min_len,
            max_len,
            continuation: 0.82,
        }
    }

    /// Overrides the length-distribution continuation probability (default
    /// 0.82). Higher values skew toward longer sentences; mean extra length
    /// is roughly `p / (1 - p)` before truncation.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn with_continuation(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "continuation must be in [0, 1)");
        self.continuation = p;
        self
    }

    /// Number of sentences.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the corpus is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The vocabulary size.
    pub fn vocab_size(&self) -> u32 {
        self.vocab_size
    }

    /// The inclusive sentence-length range.
    pub fn length_range(&self) -> (usize, usize) {
        (self.min_len, self.max_len)
    }

    /// Materializes sentence `index` as a token sequence.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::IndexOutOfRange`] if `index >= len`.
    pub fn sentence(&self, index: usize) -> Result<Vec<u32>, DatasetError> {
        if index >= self.len {
            return Err(DatasetError::IndexOutOfRange {
                index,
                len: self.len,
            });
        }
        let mut rng = Rng64::new(self.seed ^ (index as u64).wrapping_mul(0xd134_2543_de82_ef95));
        let len = self.sample_length(&mut rng);
        Ok((0..len)
            .map(|_| rng.next_below(u64::from(self.vocab_size)) as u32)
            .collect())
    }

    /// Length of sentence `index` without materializing tokens (used by the
    /// simulated devices to derive per-sample operation counts).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::IndexOutOfRange`] if `index >= len`.
    pub fn sentence_length(&self, index: usize) -> Result<usize, DatasetError> {
        if index >= self.len {
            return Err(DatasetError::IndexOutOfRange {
                index,
                len: self.len,
            });
        }
        let mut rng = Rng64::new(self.seed ^ (index as u64).wrapping_mul(0xd134_2543_de82_ef95));
        Ok(self.sample_length(&mut rng))
    }

    fn sample_length(&self, rng: &mut Rng64) -> usize {
        // Truncated geometric: short sentences common, long ones rare.
        let span = self.max_len - self.min_len;
        if span == 0 {
            return self.min_len;
        }
        let mut extra = 0usize;
        while extra < span && rng.next_bool(self.continuation) {
            extra += 1;
        }
        self.min_len + extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> SyntheticSentences {
        SyntheticSentences::new(100, 500, 11, 4, 24)
    }

    #[test]
    fn deterministic_per_index() {
        let c = corpus();
        assert_eq!(c.sentence(7).unwrap(), c.sentence(7).unwrap());
        assert_ne!(c.sentence(7).unwrap(), c.sentence(8).unwrap());
    }

    #[test]
    fn tokens_within_vocab() {
        let c = corpus();
        for i in 0..50 {
            assert!(c.sentence(i).unwrap().iter().all(|t| *t < 100));
        }
    }

    #[test]
    fn lengths_within_range_and_variable() {
        let c = corpus();
        let lengths: Vec<usize> = (0..200).map(|i| c.sentence(i).unwrap().len()).collect();
        assert!(lengths.iter().all(|l| (4..=24).contains(l)));
        let distinct: std::collections::HashSet<usize> = lengths.iter().copied().collect();
        assert!(distinct.len() > 5, "lengths should vary, got {distinct:?}");
    }

    #[test]
    fn sentence_length_matches_sentence() {
        let c = corpus();
        for i in 0..50 {
            assert_eq!(c.sentence_length(i).unwrap(), c.sentence(i).unwrap().len());
        }
    }

    #[test]
    fn out_of_range() {
        assert!(corpus().sentence(500).is_err());
        assert!(corpus().sentence_length(500).is_err());
    }

    #[test]
    fn fixed_length_corpus() {
        let c = SyntheticSentences::new(10, 5, 1, 6, 6);
        assert_eq!(c.sentence(0).unwrap().len(), 6);
        assert_eq!(c.length_range(), (6, 6));
    }

    #[test]
    #[should_panic(expected = "invalid length range")]
    fn bad_range_panics() {
        SyntheticSentences::new(10, 5, 1, 9, 3);
    }

    #[test]
    fn continuation_controls_mean_length() {
        let short = SyntheticSentences::new(10, 400, 1, 1, 100).with_continuation(0.5);
        let long = SyntheticSentences::new(10, 400, 1, 1, 100).with_continuation(0.95);
        let mean = |c: &SyntheticSentences| {
            (0..400)
                .map(|i| c.sentence_length(i).unwrap())
                .sum::<usize>() as f64
                / 400.0
        };
        let (ms, ml) = (mean(&short), mean(&long));
        assert!(ms < 4.0, "short mean {ms}");
        assert!((15.0..30.0).contains(&ml), "long mean {ml}");
    }

    #[test]
    #[should_panic(expected = "continuation")]
    fn bad_continuation_panics() {
        SyntheticSentences::new(10, 5, 1, 1, 3).with_continuation(1.0);
    }
}

//! Deterministic synthetic datasets standing in for ImageNet, COCO, and
//! WMT16 EN-DE.
//!
//! The real benchmark downloads public datasets before a run (Section IV-C).
//! This reproduction cannot assume multi-gigabyte downloads, so each dataset
//! is a *pure function* of `(seed, index)`: any sample can be materialized on
//! demand, bit-identically, on any machine. Ground-truth labels are attached
//! one level up in `mlperf-models` by running the deterministic teacher
//! networks over these inputs (see DESIGN.md for why that substitution
//! preserves the quality-target machinery).
//!
//! The module also provides [`tracker::SampleTracker`], which implements the
//! LoadGen's QSL load/unload accounting — loading samples into memory is an
//! untimed operation, but the benchmark verifies the SUT only touches loaded
//! samples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod image;
pub mod text;
pub mod tracker;

pub use image::SyntheticImages;
pub use text::SyntheticSentences;
pub use tracker::SampleTracker;

/// Errors from dataset access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// A sample index beyond the dataset length was requested.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The dataset length.
        len: usize,
    },
    /// A sample was accessed without being loaded first.
    SampleNotLoaded(usize),
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::IndexOutOfRange { index, len } => {
                write!(f, "sample index {index} out of range for dataset of {len}")
            }
            DatasetError::SampleNotLoaded(i) => {
                write!(f, "sample {i} accessed while not loaded")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

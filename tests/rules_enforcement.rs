//! The rulebook must have teeth: these tests check that each rule catches
//! the behaviour it exists to prevent.

use mlperf_inference::audit::checker::{check_submission, CheckFinding, SubmissionCheckInput};
use mlperf_inference::loadgen::config::TestSettings;
use mlperf_inference::loadgen::des::run_simulated;
use mlperf_inference::loadgen::scenario::Scenario;
use mlperf_inference::loadgen::time::Nanos;
use mlperf_inference::loadgen::validate::ValidityIssue;
use mlperf_inference::models::qsl::TaskQsl;
use mlperf_inference::models::TaskId;
use mlperf_inference::models::Workload;
use mlperf_inference::sut::device::{Architecture, DeviceSpec, ThermalModel};
use mlperf_inference::sut::engine::{BatchPolicy, DeviceSut};
use mlperf_inference::sut::fleet::fleet;

/// A short run lets a big parallel machine absorb an over-capacity burst
/// entirely within the latency bound; the minimum-duration rule exists so
/// queue divergence has time to surface. (This reproduction caught exactly
/// this failure mode during development.)
#[test]
fn minimum_duration_defeats_burst_absorption() {
    let sys = fleet()
        .into_iter()
        .find(|s| s.spec.name == "multi-gpu-server")
        .expect("fleet contains the multi-GPU server");
    let task = TaskId::MachineTranslation;
    let spec = task.spec();
    // Several times beyond physical capacity (~7.5k samples/s).
    let impossible_qps = 40_000.0;
    let mut qsl = TaskQsl::for_task(task, 3_903);

    // Short run: the burst fits in the machine, the bound appears to hold.
    let short = TestSettings::server(impossible_qps, spec.server_latency_bound)
        .with_min_query_count(64)
        .with_min_duration(Nanos::from_micros(200))
        .with_latency_percentile(mlperf_inference::stats::Percentile::P97);
    let mut sut = sys.sut_for(task, Scenario::Server);
    let out = run_simulated(&short, &mut qsl, &mut sut).expect("run completes");
    assert!(
        out.result.is_valid(),
        "premise: a too-short run hides the overload"
    );

    // A duration-respecting run exposes the divergence.
    let long = short.clone().with_min_duration(Nanos::from_secs(4));
    let mut sut = sys.sut_for(task, Scenario::Server);
    let out = run_simulated(&long, &mut qsl, &mut sut).expect("run completes");
    assert!(
        !out.result.is_valid(),
        "long run must expose the overload: {:?}",
        out.result.metric
    );
    assert!(out
        .result
        .validity
        .iter()
        .any(|i| matches!(i, ValidityIssue::LatencyBoundExceeded { .. })));
}

/// DVFS/thermal equilibrium: a boosted device looks faster in a short
/// single-stream run than in a 60-second one — the other reason the
/// minimum-duration rule exists (Section III-D).
#[test]
fn minimum_duration_sees_through_thermal_boost() {
    let spec = DeviceSpec::new(
        "boosted-phone",
        Architecture::Asic,
        50.0,
        0.2,
        8,
        1,
        Nanos::from_micros(500),
    )
    .with_thermal(ThermalModel {
        boost: 1.5,
        decay_secs: 5.0,
    });
    let run = |duration: Nanos| {
        let mut sut = DeviceSut::new(
            spec.clone(),
            Workload::new(TaskId::ImageClassificationLight),
            BatchPolicy::Immediate,
        );
        let mut qsl = TaskQsl::for_task(TaskId::ImageClassificationLight, 1_024);
        let settings = TestSettings::single_stream()
            .with_min_query_count(16)
            .with_min_duration(duration);
        run_simulated(&settings, &mut qsl, &mut sut)
            .expect("run completes")
            .result
            .latency_stats
            .expect("queries completed")
            .p90
    };
    let burst = run(Nanos::from_millis(10));
    let sustained = run(Nanos::from_secs(60));
    assert!(
        sustained.as_secs_f64() > burst.as_secs_f64() * 1.2,
        "sustained p90 {sustained} should be well above boosted-burst p90 {burst}"
    );
}

/// The submission checker enforces Table V query counts per task class.
#[test]
fn checker_distinguishes_vision_and_translation_requirements() {
    let sys = fleet()
        .into_iter()
        .find(|s| s.spec.name == "server-cpu")
        .expect("fleet contains the server CPU");
    let task = TaskId::MachineTranslation;
    let mut qsl = TaskQsl::for_task(task, 3_903);
    let mut sut = sys.sut_for(task, Scenario::SingleStream);
    // 100,000 queries: enough for translation (90,112) but not vision.
    let settings = TestSettings::single_stream()
        .with_min_query_count(100_000)
        .with_min_duration(Nanos::from_millis(1));
    let mut result = run_simulated(&settings, &mut qsl, &mut sut)
        .expect("run completes")
        .result;
    // Re-badge the run as a server result: the Table V minimum depends on
    // the scenario x task-class pair, which is what this test exercises.
    result.scenario = Scenario::Server;
    let translation = SubmissionCheckInput {
        task,
        result: &result,
        measured_quality: 23.9,
        reference_quality: 23.9,
    };
    // Duration is short (simulated run at default min_duration 1 ms), so
    // filter to the query-count finding specifically.
    assert!(!check_submission(&translation)
        .iter()
        .any(|f| matches!(f, CheckFinding::QueryCountBelowTableV { .. })));
    let vision = SubmissionCheckInput {
        task: TaskId::ImageClassificationHeavy,
        result: &result,
        measured_quality: 0.76,
        reference_quality: 0.76,
    };
    assert!(check_submission(&vision).iter().any(|f| matches!(
        f,
        CheckFinding::QueryCountBelowTableV {
            required: 270_336,
            ..
        }
    )));
}

/// GNMT pays for padding in unsorted server batches but not in sorted
/// offline ones — the mechanism behind the paper's NMT server penalty.
#[test]
fn gnmt_offline_sorting_beats_unsorted_processing() {
    let sys = fleet()
        .into_iter()
        .find(|s| s.spec.name == "server-cpu")
        .expect("fleet contains the server CPU");
    let task = TaskId::MachineTranslation;
    let settings = TestSettings::offline()
        .with_offline_min_sample_count(4_096)
        .with_min_duration(Nanos::from_millis(1));
    let mut qsl = TaskQsl::for_task(task, 3_903);
    // The fleet's offline engine sorts by length.
    let sorted = run_simulated(
        &settings,
        &mut qsl,
        &mut sys.sut_for(task, Scenario::Offline),
    )
    .expect("run completes");
    // An unsorted engine on the same device.
    let mut unsorted_sut = DeviceSut::new(
        sys.spec.clone(),
        Workload::new(task),
        BatchPolicy::Immediate,
    );
    let unsorted = run_simulated(&settings, &mut qsl, &mut unsorted_sut).expect("run completes");
    let (a, b) = (sorted.result.metric.score(), unsorted.result.metric.score());
    assert!(
        a > b * 1.3,
        "sorted offline {a:.1} should beat unsorted {b:.1} by well over 30%"
    );
}

//! Reproducibility guarantees: identical seeds give identical results
//! across the whole stack, and the seed streams are properly decoupled.

use mlperf_inference::loadgen::config::TestSettings;
use mlperf_inference::loadgen::des::run_simulated;
use mlperf_inference::loadgen::scenario::Scenario;
use mlperf_inference::loadgen::time::Nanos;
use mlperf_inference::models::qsl::TaskQsl;
use mlperf_inference::models::TaskId;
use mlperf_inference::stats::rng::SeedTriple;
use mlperf_inference::stats::Rng64;
use mlperf_inference::sut::fleet::fleet;

fn run_once(
    seed_triple: SeedTriple,
    system_name: &str,
) -> mlperf_inference::loadgen::des::RunOutcome {
    let sys = fleet()
        .into_iter()
        .find(|s| s.spec.name == system_name)
        .expect("system exists");
    let task = TaskId::ImageClassificationLight;
    let mut qsl = TaskQsl::for_task(task, 2_048);
    let mut sut = sys.sut_for(task, Scenario::Server);
    let settings = TestSettings::server(60.0, task.spec().server_latency_bound)
        .with_min_query_count(512)
        .with_min_duration(Nanos::from_millis(5))
        .with_seeds(seed_triple);
    run_simulated(&settings, &mut qsl, &mut sut).expect("run completes")
}

#[test]
fn identical_seeds_identical_runs() {
    let a = run_once(SeedTriple::OFFICIAL, "edge-asic");
    let b = run_once(SeedTriple::OFFICIAL, "edge-asic");
    assert_eq!(a.result, b.result);
    assert_eq!(a.records, b.records);
}

#[test]
fn alternate_seeds_change_the_schedule_but_not_the_story() {
    let official = run_once(SeedTriple::OFFICIAL, "edge-asic");
    let alternate = run_once(SeedTriple::OFFICIAL.alternate(0), "edge-asic");
    // Different arrival times...
    assert_ne!(
        official.records[0].scheduled_at,
        alternate.records[0].scheduled_at
    );
    // ...but statistically equivalent behaviour (both valid, similar p90).
    assert!(official.result.is_valid() && alternate.result.is_valid());
    let (a, b) = (
        official
            .result
            .latency_stats
            .expect("completed")
            .p90
            .as_secs_f64(),
        alternate
            .result
            .latency_stats
            .expect("completed")
            .p90
            .as_secs_f64(),
    );
    assert!((a / b - 1.0).abs() < 0.5, "p90s too different: {a} vs {b}");
}

#[test]
fn any_master_seed_reproduces() {
    let mut rng = Rng64::new(0x4445_5445);
    for case in 0..8 {
        let seed = rng.next_u64();
        let triple = SeedTriple::from_master(seed);
        let a = run_once(triple, "laptop-cpu");
        let b = run_once(triple, "laptop-cpu");
        assert_eq!(a.result, b.result, "case {case}: seed={seed}");
    }
}

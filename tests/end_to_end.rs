//! Cross-crate integration: fleet systems driven by the LoadGen through
//! all four scenarios, proxy accuracy scored from LoadGen logs, and the
//! quality windows checked end to end.

use mlperf_inference::loadgen::config::{TestMode, TestSettings};
use mlperf_inference::loadgen::des::run_simulated;
use mlperf_inference::loadgen::query::ResponsePayload;
use mlperf_inference::loadgen::results::ScenarioMetric;
use mlperf_inference::loadgen::scenario::Scenario;
use mlperf_inference::loadgen::time::Nanos;
use mlperf_inference::models::proxy::{ClassifierProxy, Precision, TranslatorProxy};
use mlperf_inference::models::qsl::TaskQsl;
use mlperf_inference::models::{QualityTarget, TaskId};
use mlperf_inference::sut::engine::BatchPolicy;
use mlperf_inference::sut::fleet::fleet;
use mlperf_inference::sut::proxy_sut::{classifier_sut, translator_sut};
use std::sync::Arc;

fn system(name: &str) -> mlperf_inference::sut::fleet::FleetSystem {
    fleet()
        .into_iter()
        .find(|s| s.spec.name == name)
        .unwrap_or_else(|| panic!("fleet contains {name}"))
}

#[test]
fn every_fleet_system_completes_a_single_stream_run() {
    let settings = TestSettings::single_stream()
        .with_min_query_count(64)
        .with_min_duration(Nanos::from_millis(1));
    for sys in fleet() {
        let mut qsl = TaskQsl::for_task(TaskId::ImageClassificationLight, 2_048);
        let mut sut = sys.sut_for(TaskId::ImageClassificationLight, Scenario::SingleStream);
        let out = run_simulated(&settings, &mut qsl, &mut sut)
            .unwrap_or_else(|e| panic!("{}: {e}", sys.spec.name));
        assert!(
            out.result.is_valid(),
            "{}: {:?}",
            sys.spec.name,
            out.result.validity
        );
        assert_eq!(out.result.query_count, 64);
    }
}

#[test]
fn all_four_scenarios_run_on_one_system() {
    let sys = system("datacenter-gpu");
    let task = TaskId::ImageClassificationHeavy;
    let spec = task.spec();
    let mut qsl = TaskQsl::for_task(task, 2_048);

    let ss = run_simulated(
        &TestSettings::single_stream()
            .with_min_query_count(128)
            .with_min_duration(Nanos::from_millis(1)),
        &mut qsl,
        &mut sys.sut_for(task, Scenario::SingleStream),
    )
    .expect("single-stream runs");
    assert!(matches!(
        ss.result.metric,
        ScenarioMetric::SingleStream { .. }
    ));
    assert!(ss.result.is_valid());

    let ms = run_simulated(
        &TestSettings::multi_stream(2, spec.multistream_interval)
            .with_min_query_count(64)
            .with_min_duration(Nanos::from_millis(1)),
        &mut qsl,
        &mut sys.sut_for(task, Scenario::MultiStream),
    )
    .expect("multistream runs");
    assert!(matches!(
        ms.result.metric,
        ScenarioMetric::MultiStream { streams: 2, .. }
    ));

    let server = run_simulated(
        &TestSettings::server(200.0, spec.server_latency_bound)
            .with_min_query_count(512)
            .with_min_duration(Nanos::from_millis(5)),
        &mut qsl,
        &mut sys.sut_for(task, Scenario::Server),
    )
    .expect("server runs");
    assert!(server.result.is_valid(), "{:?}", server.result.validity);

    let offline = run_simulated(
        &TestSettings::offline()
            .with_offline_min_sample_count(4_096)
            .with_min_duration(Nanos::from_millis(1)),
        &mut qsl,
        &mut sys.sut_for(task, Scenario::Offline),
    )
    .expect("offline runs");
    match offline.result.metric {
        ScenarioMetric::Offline { samples_per_second } => assert!(samples_per_second > 0.0),
        ref m => panic!("wrong metric {m:?}"),
    }
}

#[test]
fn classifier_quality_window_holds_through_the_loadgen() {
    let task = TaskId::ImageClassificationLight;
    let proxy = Arc::new(ClassifierProxy::new(task, 200, 42));
    let fp32 = proxy.accuracy(Precision::Fp32);
    let sys = system("mobile-npu");
    let mut sut = classifier_sut(
        sys.spec.clone(),
        Arc::clone(&proxy),
        Precision::Quantized,
        BatchPolicy::Immediate,
    );
    let mut qsl = TaskQsl::for_task(task, 200);
    let out = run_simulated(
        &TestSettings::offline().with_mode(TestMode::AccuracyOnly),
        &mut qsl,
        &mut sut,
    )
    .expect("accuracy run");
    assert_eq!(out.accuracy_log.len(), 200);
    let mut preds = vec![0usize; 200];
    for entry in &out.accuracy_log {
        match entry.payload {
            ResponsePayload::Class(c) => preds[entry.sample_index] = c,
            ref p => panic!("unexpected payload {p:?}"),
        }
    }
    let int8 = proxy.score(&preds);
    let target = QualityTarget::for_task_with_reference(task, fp32);
    assert!(
        target.is_met(int8),
        "INT8 accuracy {int8:.4} below the {}-window threshold {:.4} (fp32 {fp32:.4})",
        task.spec().quality_window,
        target.threshold()
    );
}

#[test]
fn translator_bleu_scored_from_loadgen_log() {
    let proxy = Arc::new(TranslatorProxy::new(60, 7));
    let fp32 = proxy.bleu(Precision::Fp32);
    let sys = system("server-cpu");
    let mut sut = translator_sut(
        sys.spec.clone(),
        Arc::clone(&proxy),
        Precision::Fp32,
        BatchPolicy::Immediate,
    );
    let mut qsl = TaskQsl::for_task(TaskId::MachineTranslation, 60);
    let out = run_simulated(
        &TestSettings::offline().with_mode(TestMode::AccuracyOnly),
        &mut qsl,
        &mut sut,
    )
    .expect("accuracy run");
    let mut candidates = vec![Vec::new(); 60];
    for entry in &out.accuracy_log {
        if let ResponsePayload::Tokens(t) = &entry.payload {
            candidates[entry.sample_index] = t.clone();
        }
    }
    let logged = proxy.score(&candidates);
    assert!(
        (logged - fp32).abs() < 1e-9,
        "log path must match direct eval"
    );
}

#[test]
fn realtime_and_simulated_agree_on_fixed_latency() {
    use mlperf_inference::loadgen::qsl::MemoryQsl;
    use mlperf_inference::loadgen::realtime::run_realtime;
    use mlperf_inference::loadgen::sut::{FixedLatencySut, SleepSut};

    let settings = TestSettings::single_stream()
        .with_min_query_count(32)
        .with_min_duration(Nanos::from_millis(1));
    let mut qsl = MemoryQsl::new("q", 32, 32);
    let mut sim_sut = FixedLatencySut::new("fixed", Nanos::from_micros(400));
    let sim = run_simulated(&settings, &mut qsl, &mut sim_sut).expect("simulated run");
    let real = run_realtime(
        &settings,
        &mut qsl,
        Arc::new(SleepSut::new(
            "fixed",
            std::time::Duration::from_micros(400),
        )),
    )
    .expect("realtime run");
    // Same rulebook: both valid, same query count, latencies within a
    // scheduler-jitter factor of each other.
    assert!(sim.result.is_valid() && real.result.is_valid());
    let (sp90, rp90) = match (sim.result.metric, real.result.metric) {
        (
            ScenarioMetric::SingleStream { p90_latency: a },
            ScenarioMetric::SingleStream { p90_latency: b },
        ) => (a, b),
        other => panic!("wrong metrics {other:?}"),
    };
    assert_eq!(sp90, Nanos::from_micros(400));
    assert!(
        rp90 >= sp90 && rp90 < Nanos::from_micros(4_000),
        "realtime p90 {rp90} wildly off simulated {sp90}"
    );

    // Third leg: the same device behind a loopback TCP connection. The
    // wire moves the LoadGen/SUT boundary onto the network without moving
    // the rulebook — same verdict, same query count, under the same seed.
    use mlperf_inference::loadgen::qsl::QuerySampleLibrary;
    use mlperf_inference::wire::{loopback, RemoteSut, RemoteSutConfig, ServeConfig, SimHost};

    let config = RemoteSutConfig::default();
    let hello = RemoteSut::hello_for(&settings, qsl.total_sample_count() as u64, &config);
    let service = Arc::new(SimHost::new(FixedLatencySut::new(
        "fixed",
        Nanos::from_micros(400),
    )));
    let (client, server) =
        loopback(service, ServeConfig::default(), hello, config).expect("loopback");
    let remote = run_realtime(&settings, &mut qsl, Arc::new(client)).expect("remote run");
    server.shutdown();

    assert!(
        remote.result.is_valid(),
        "loopback remote run must be valid: {:?}",
        remote.result.validity
    );
    assert_eq!(remote.result.query_count, sim.result.query_count);
    assert_eq!(remote.result.query_count, real.result.query_count);
    let wp90 = match remote.result.metric {
        ScenarioMetric::SingleStream { p90_latency } => p90_latency,
        ref m => panic!("wrong metric {m:?}"),
    };
    assert!(
        wp90 >= sp90 && wp90 < Nanos::from_micros(8_000),
        "wire p90 {wp90} wildly off simulated {sp90}"
    );
}

#[test]
fn multitenant_server_shares_one_gpu() {
    use mlperf_inference::loadgen::multitenant::run_multitenant_server;
    use mlperf_inference::models::Workload;

    let gpu = system("datacenter-gpu");
    let vision = TaskId::ImageClassificationHeavy;
    let translation = TaskId::MachineTranslation;
    let mut sut = gpu
        .sut_for(vision, Scenario::Server)
        .with_tenant_workload(Workload::new(translation));
    let vision_settings = TestSettings::server(300.0, vision.spec().server_latency_bound)
        .with_min_query_count(1_000)
        .with_min_duration(Nanos::from_millis(100));
    let translation_settings = TestSettings::server(50.0, translation.spec().server_latency_bound)
        .with_min_query_count(100)
        .with_min_duration(Nanos::from_millis(100));
    let mut vision_qsl = TaskQsl::for_task(vision, 2_048);
    let mut translation_qsl = TaskQsl::for_task(translation, 2_048);
    let mut tenants: Vec<(&TestSettings, &mut TaskQsl)> = vec![
        (&vision_settings, &mut vision_qsl),
        (&translation_settings, &mut translation_qsl),
    ];
    let outcomes = run_multitenant_server(&mut tenants, &mut sut).expect("well-formed run");
    assert_eq!(outcomes.len(), 2);
    assert!(
        outcomes[0].result.is_valid(),
        "{:?}",
        outcomes[0].result.validity
    );
    assert!(
        outcomes[1].result.is_valid(),
        "{:?}",
        outcomes[1].result.validity
    );
    assert_eq!(outcomes[0].result.query_count, 1_000);
    assert_eq!(outcomes[1].result.query_count, 100);
}

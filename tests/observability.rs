//! Integration tests for the observability layer: Chrome-trace export of a
//! real device run, time-series sampling of a multitenant run, and the
//! wall-clock span profiler.

use std::sync::Arc;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use mlperf_loadgen::config::TestSettings;
use mlperf_loadgen::des::{run_instrumented, run_simulated_traced};
use mlperf_loadgen::multitenant::run_multitenant_server_instrumented;
use mlperf_loadgen::qsl::MemoryQsl;
use mlperf_loadgen::time::Nanos;
use mlperf_loadgen::Instruments;
use mlperf_models::{TaskId, Workload};
use mlperf_sut::device::{Architecture, DeviceSpec, ThermalModel};
use mlperf_sut::engine::{BatchPolicy, DeviceSut};
use mlperf_trace::{
    chrome_trace_json, profile, JsonValue, MetricsRegistry, RingBufferSink, TimeSeriesSampler,
};

/// The span profiler is process-global, so tests that enable it (or that
/// merely execute instrumented code while another test has it enabled)
/// must not interleave.
fn hold_profiler() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn demo_device(units: usize) -> DeviceSpec {
    DeviceSpec::new(
        "obs-test-gpu",
        Architecture::Gpu,
        2_000.0,
        2.0,
        16,
        units,
        Nanos::from_micros(50),
    )
    .with_thermal(ThermalModel {
        boost: 1.3,
        decay_secs: 0.5,
    })
}

#[test]
fn chrome_export_of_device_run_round_trips() {
    let _guard = hold_profiler();
    let units = 2;
    let settings = TestSettings::server(1_000.0, Nanos::from_millis(15))
        .with_min_query_count(512)
        .with_min_duration(Nanos::from_millis(1));
    let mut qsl = MemoryQsl::new("obs-qsl", 256, 256);
    let sink = Arc::new(RingBufferSink::unbounded());
    let mut sut = DeviceSut::new(
        demo_device(units),
        Workload::new(TaskId::ImageClassificationLight),
        BatchPolicy::DynamicBatch {
            timeout: Nanos::from_millis(2),
            max_batch: 16,
        },
    )
    .with_trace(sink.clone());
    let outcome = run_simulated_traced(&settings, &mut qsl, &mut sut, sink.as_ref())
        .expect("smoke run succeeds");
    assert!(outcome.result.is_valid(), "{:?}", outcome.result.validity);

    // The exported timeline must parse back with the hand-rolled JSON layer.
    let exported = chrome_trace_json(&sink.snapshot());
    let doc = JsonValue::parse(&exported).expect("chrome trace is valid JSON");
    let entries = doc.as_array().expect("top level is an array");
    assert!(!entries.is_empty());

    // One device lane (pid 2 tid) per execution unit, and within each lane
    // (device or query) timestamps never go backwards.
    let mut device_lanes = std::collections::BTreeSet::new();
    let mut last_ts: std::collections::BTreeMap<(i64, i64), f64> =
        std::collections::BTreeMap::new();
    for entry in entries {
        let pid = entry.field("pid").unwrap().as_i64().unwrap();
        let tid = entry.field("tid").unwrap().as_i64().unwrap();
        let ph = entry.field("ph").unwrap().as_str().unwrap();
        if ph == "M" {
            continue; // process_name metadata rows carry no timestamp
        }
        let ts = entry.field("ts").unwrap().as_f64().unwrap();
        if pid == 2 && ph == "X" {
            device_lanes.insert(tid);
        }
        if ph == "X" {
            let prev = last_ts.insert((pid, tid), ts).unwrap_or(f64::MIN);
            assert!(
                prev <= ts,
                "lane (pid {pid}, tid {tid}) went backwards: {prev} -> {ts}"
            );
        }
    }
    let lanes: Vec<i64> = device_lanes.into_iter().collect();
    assert_eq!(
        lanes,
        (0..units as i64).collect::<Vec<_>>(),
        "expected one device lane per execution unit"
    );
}

#[test]
fn multitenant_timeseries_covers_the_run() {
    let _guard = hold_profiler();
    let interval_ns = 50_000_000u64; // 50 ms of simulated time
    let a = TestSettings::server(400.0, Nanos::from_millis(20))
        .with_min_query_count(400)
        .with_min_duration(Nanos::from_millis(5));
    let b = TestSettings::server(200.0, Nanos::from_millis(30))
        .with_min_query_count(200)
        .with_min_duration(Nanos::from_millis(5));
    let mut qa = MemoryQsl::new("tenant-a", 64, 64);
    let mut qb = MemoryQsl::new("tenant-b", 64, 64);
    let registry = Arc::new(MetricsRegistry::new());
    let mut sut = DeviceSut::new(
        demo_device(2),
        Workload::new(TaskId::ImageClassificationLight),
        BatchPolicy::Immediate,
    )
    .with_metrics(registry.clone());

    let sampler = TimeSeriesSampler::new(interval_ns);
    let instruments = Instruments::none()
        .with_metrics(&registry)
        .with_sampler(&sampler);
    let mut tenants: Vec<(&TestSettings, &mut MemoryQsl)> = vec![(&a, &mut qa), (&b, &mut qb)];
    let outcomes = run_multitenant_server_instrumented(&mut tenants, &mut sut, &instruments)
        .expect("multitenant smoke run succeeds");
    for (i, out) in outcomes.iter().enumerate() {
        assert!(
            out.result.is_valid(),
            "tenant {i}: {:?}",
            out.result.validity
        );
    }

    // At least floor(duration / interval) rows, timestamps on the interval
    // grid and strictly increasing, and the counters must account for both
    // tenants' full query counts by the final row.
    let duration_ns = outcomes
        .iter()
        .map(|o| o.result.duration.as_nanos())
        .max()
        .expect("two outcomes");
    let rows = sampler.rows();
    let expected = (duration_ns / interval_ns) as usize;
    assert!(
        rows.len() >= expected,
        "want >= {expected} rows for a {duration_ns} ns run, got {}",
        rows.len()
    );
    assert!(rows.windows(2).all(|w| w[0].t_ns < w[1].t_ns));
    assert!(rows.iter().all(|r| r.t_ns % interval_ns == 0));
    // The registry holds both tenants' full query counts; the last row is
    // a snapshot at the final interval boundary, so it may miss the tail
    // issued after that boundary but can never overshoot.
    assert_eq!(registry.snapshot().counter("queries_issued"), 400 + 200);
    let last = rows.last().expect("non-empty");
    assert!(last.queries_issued <= 400 + 200);
    assert!(last.queries_issued > 500, "most of the run is sampled");
    assert!(last.queries_completed <= last.queries_issued);
    assert!(rows.iter().any(|r| r.throughput_qps > 0.0));
    // The device shares its DVFS state through the same registry.
    assert!(rows
        .iter()
        .any(|r| r.gauges.contains_key("dvfs_multiplier_milli")));
}

#[test]
fn profiler_root_inclusive_tracks_wall_clock() {
    let _guard = hold_profiler();
    let settings = TestSettings::server(1_000.0, Nanos::from_millis(15))
        .with_min_query_count(2_048)
        .with_min_duration(Nanos::from_millis(1));
    let mut qsl = MemoryQsl::new("obs-qsl", 256, 256);
    let mut sut = DeviceSut::new(
        demo_device(2),
        Workload::new(TaskId::ImageClassificationLight),
        BatchPolicy::DynamicBatch {
            timeout: Nanos::from_millis(2),
            max_batch: 16,
        },
    );

    profile::reset();
    profile::set_enabled(true);
    let wall_start = Instant::now();
    let outcome = run_instrumented(&settings, &mut qsl, &mut sut, &Instruments::none())
        .expect("smoke run succeeds");
    let wall_ns = wall_start.elapsed().as_nanos() as u64;
    profile::set_enabled(false);
    assert!(outcome.result.is_valid(), "{:?}", outcome.result.validity);

    let report = profile::report();
    let root_ns = report.root_inclusive_ns();
    let diff = root_ns.abs_diff(wall_ns);
    assert!(
        diff * 10 <= wall_ns,
        "root inclusive {root_ns} ns must be within 10% of wall {wall_ns} ns"
    );

    // The instrumented hot paths all show up, with sane nesting.
    let run = report.find("loadgen/run").expect("root span present");
    assert_eq!(run.calls, 1);
    let issue = report
        .find("loadgen/run;loadgen/event_loop;loadgen/issue")
        .expect("issue span present");
    assert_eq!(issue.calls, 2_048);
    assert!(issue.inclusive_ns <= run.inclusive_ns);
    assert!(report
        .find("loadgen/run;loadgen/event_loop;loadgen/issue;sut/drain_queue")
        .is_some());

    // Both exporters have content and agree on the root.
    let table = report.table();
    assert!(table.contains("loadgen/run"), "{table}");
    let collapsed = report.collapsed();
    assert!(!collapsed.is_empty());
    assert!(
        collapsed.lines().all(|l| {
            let (stack, weight) = l.rsplit_once(' ').expect("stack <weight>");
            stack.starts_with("loadgen/run") && weight.parse::<u64>().is_ok()
        }),
        "collapsed stacks must be flamegraph.pl compatible:\n{collapsed}"
    );
    profile::reset();
}

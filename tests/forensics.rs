//! Integration tests for the tail-latency forensics pipeline: a seeded
//! INVALID run must leave a flight-recorder dump that parses, holds the
//! doomed run's freshest events, and — fed to the analysis layer — yields
//! a root cause naming the constraint the run actually violated.

use std::sync::Arc;

use mlperf_loadgen::config::TestSettings;
use mlperf_loadgen::des::run_simulated_traced;
use mlperf_loadgen::qsl::MemoryQsl;
use mlperf_loadgen::sut::FixedLatencySut;
use mlperf_loadgen::time::Nanos;
use mlperf_trace::flight::{parse_flight_dump, render_flight_dump};
use mlperf_trace::RingBufferSink;

/// Events kept in the dump, matching the harness binaries.
const FLIGHT_TAIL: usize = 256;

/// A server run whose SUT is far slower than the latency bound: every
/// query busts the bound, so the run is INVALID by
/// `LatencyBoundExceeded` — deterministically, under any seed.
fn doomed_run(sink: &RingBufferSink) -> mlperf_loadgen::des::RunOutcome {
    let settings = TestSettings::server(2_000.0, Nanos::from_micros(50))
        .with_min_query_count(64)
        .with_min_duration(Nanos::from_millis(10));
    let mut qsl = MemoryQsl::new("forensics-qsl", 64, 64);
    let mut sut = FixedLatencySut::new("forensics-slow", Nanos::from_millis(2));
    run_simulated_traced(&settings, &mut qsl, &mut sut, sink).expect("run completes")
}

#[test]
fn invalid_run_flight_dump_parses_and_analysis_names_the_constraint() {
    let sink = Arc::new(RingBufferSink::unbounded());
    let outcome = doomed_run(&sink);
    assert!(
        !outcome.result.is_valid(),
        "the doomed run was supposed to be INVALID"
    );
    let issue_kinds: Vec<&'static str> = outcome.result.validity.iter().map(|i| i.kind()).collect();
    assert!(
        issue_kinds.contains(&"latency_bound_exceeded"),
        "expected a latency violation, got {issue_kinds:?}"
    );

    // Dump the tail exactly like netbench/chaos do on INVALID.
    let records = sink.snapshot();
    let tail_start = records.len().saturating_sub(FLIGHT_TAIL);
    let reason = format!(
        "forensics run INVALID: {}",
        outcome
            .result
            .validity
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    );
    let dump = render_flight_dump(&reason, &records[tail_start..], tail_start as u64);

    // The dump round-trips and is non-empty.
    let parsed = parse_flight_dump(&dump).expect("dump parses");
    assert_eq!(parsed.reason, reason);
    assert_eq!(parsed.evicted, tail_start as u64);
    assert!(!parsed.records.is_empty(), "dump holds no events");

    // The analysis over the dump names the violated constraint.
    let reasons = vec![parsed.reason.clone()];
    let analysis = mlperf_analysis::analyze_records("flight", &parsed.records, &reasons, None);
    assert!(
        !analysis.root_causes.is_empty(),
        "no root cause for an INVALID run"
    );
    let constraints: Vec<&str> = analysis.root_causes.iter().map(|c| c.constraint).collect();
    for kind in &issue_kinds {
        assert!(
            constraints.contains(kind),
            "run violated `{kind}` but the analysis named {constraints:?}"
        );
    }

    // A latency violation comes with culprits: the slowest queries, each
    // attributed to a dominant segment.
    let cause = analysis
        .root_causes
        .iter()
        .find(|c| c.constraint == "latency_bound_exceeded")
        .expect("latency cause present");
    assert!(!cause.culprits.is_empty(), "no culprit queries named");
    assert!(cause.culprits[0].dominant.is_some());

    // The decomposition over the dumped tail still sums exactly.
    assert_eq!(analysis.breakdown.max_residual_ns, 0);
}

#[test]
fn analysis_recovers_the_constraint_from_the_dump_body_alone() {
    // Even with no reason line (say, a dump renamed or truncated upstream),
    // the `ValidityCheckFailed` events inside the body carry the
    // constraint text — the analysis must find it there too.
    let sink = Arc::new(RingBufferSink::unbounded());
    let outcome = doomed_run(&sink);
    assert!(!outcome.result.is_valid());

    let records = sink.snapshot();
    let analysis = mlperf_analysis::analyze_records("body-only", &records, &[], None);
    let constraints: Vec<&str> = analysis.root_causes.iter().map(|c| c.constraint).collect();
    assert!(
        constraints.contains(&"latency_bound_exceeded"),
        "body-only analysis named {constraints:?}"
    );
}

#!/usr/bin/env bash
# Local CI gate: formatting, lints, tests. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== chaos smoke (fault matrix: reproducibility + validity flips) =="
# Builds the scenario x fault matrix twice with the default seed and asserts
# byte-identical output, VALID fault-free baselines, at least one
# INVALID-flipping fault per scenario, and at least one cell rescued by the
# resilience policies. The table itself is noise in CI logs.
cargo run -q --release -p mlperf-harness --bin chaos -- --check > /dev/null

echo "== networked chaos smoke (wire faults: integrity + session resume) =="
# The wire-fault half of the matrix: scenario x wire fault x resume over a
# loopback daemon. Asserts corruption/truncation/partition surface as
# error-fraction (CRC rejects, never a fake completion), an unresumed
# disconnect ends IncompleteQueries, and reconnect+resume rescues it with
# a logical detail log byte-identical to the fault-free baseline.
cargo run -q --release -p mlperf-harness --bin chaos -- --wire --check > /dev/null

echo "== crash chaos smoke (process-kill quadrant: journal resume is lossless) =="
# The crash quadrant: four cells, each a real SIGKILL against a journaled
# wire run halted at a deterministic checkpoint boundary — client killed,
# daemon killed, both killed, and client killed mid-checkpoint-write (a
# genuinely torn frame). Each cell restarts the dead processes and resumes
# from the MLPJ journals; the check asserts every rescued run is VALID
# with a logical detail-log hash equal to the uninterrupted baseline's,
# the torn frame is detected exactly where it was inflicted, and the
# whole matrix renders byte-identically across two builds.
cargo run -q --release -p mlperf-harness --bin chaos -- --crash --check > /dev/null

echo "== netbench loopback smoke (network SUT: tracing + telemetry + interop) =="
# Single-process wire smoke: a serving daemon and a RemoteSut client on a
# loopback socket run the scaled-down offline + server pair twice, asserting
# every run is VALID, the logical detail log (deterministic per-query
# fields) renders byte-identically across connections under the fixed seed,
# the merged client+server detail log passes the TEST06 completeness audit
# with at least one end-to-end trace (client issue -> server compute ->
# client complete under one trace id), the daemon's live stats snapshot
# parses, and a v2-pinned client still interoperates with the v3 daemon.
cargo run -q --release -p mlperf-harness --bin netbench -- --loopback --stats --check

echo "== netbench fleet smoke (sharded serving survives losing a shard) =="
# Fleet mode: three heterogeneous loopback daemons behind one weighted
# ShardedSut router. A seeded victim daemon is killed mid-server-run while
# it has a query in flight; the check asserts the router rescues the
# in-flight work (the run stays VALID, the merged sharded log passes the
# completeness audit, and the victim's down + failover rows are present),
# and that a second fresh fleet renders a byte-identical logical log.
cargo run -q --release -p mlperf-harness --bin netbench -- --loopback --shards 3 --check

echo "== replay roundtrip smoke (record -> reduce -> replay, three legs) =="
# The record-reduce-replay audit: a simulated server run is recorded,
# reduced 20x, and replayed through the DES (same verdict, fingerprint
# within bound, recording and reduction byte-reproducible, reduced trace
# byte-identical to the committed results/fixtures/replay_reduced.mlpr —
# re-bless with `replay roundtrip --bless` after an intentional format or
# reducer change); a realtime loopback run is recorded, reduced 10x, and
# replayed over a fresh connection to the same verdict; and the same
# reduced trace drives a 3-shard fleet to a VALID run.
cargo run -q --release -p mlperf-harness --bin replay -- roundtrip --check

echo "== tail-latency forensics (committed artifacts regenerate byte-identically) =="
# Re-analyzes the committed log fixtures under results/fixtures/ and
# asserts: results/analysis.{md,json} reproduce byte-for-byte, the
# per-query segment decomposition sums to the end-to-end latency exactly
# (residual 0ns), and the chaos flight-dump fixture yields a root cause
# naming every constraint its reason line records. After an intentional
# report change, re-bless with:
#   cargo run --release -p mlperf-harness --bin analyze -- --check --bless
cargo run -q --release -p mlperf-harness --bin analyze -- --check

echo "== bench suite (smoke mode, JSON report) =="
# Fast smoke pass over every bench binary: each one appends its medians to
# one machine-readable report. MLPERF_TRACE_OVERHEAD_MAX_PCT makes the
# trace_overhead bench assert that a disabled sink stays within noise of
# the un-traced baseline (the observability layer must be free when off);
# MLPERF_FAULT_OVERHEAD_MAX_PCT does the same for a disarmed FaultySut
# wrapper (the chaos hooks must be free when no fault is armed);
# MLPERF_WIRE_OVERHEAD_MAX_PCT bounds the loopback wire tax in the
# wire_overhead bench (warn-only: loopback latency is kernel-dependent);
# MLPERF_WIRE_CHAOS_OVERHEAD_MAX_PCT bounds the disarmed chaos-decorator
# tax in wire_chaos_overhead (also warn-only, same noise caveat);
# MLPERF_REPLAY_OVERHEAD_MAX_PCT bounds the DES replay-vs-native gap in
# replay_reduce (warn-only — replay has historically been *faster* than
# the native scheduler, so a warning here means the replay path grew a
# hot-loop cost);
# MLPERF_JOURNAL_OVERHEAD_MAX_PCT bounds the fsync-free checkpoint
# serialization tax in journal_overhead (warn-only: the plain DES
# baseline is ~300 ns/query, so the ratio is noisy by construction —
# the gate exists to flag a return of the quadratic full-snapshot
# serialization, which showed up as >16000% before delta frames).
BENCH_JSON="$(pwd)/target/bench-current.json"
rm -f "$BENCH_JSON"
MLPERF_BENCH_JSON="$BENCH_JSON" \
MLPERF_BENCH_BUDGET_MS=50 \
MLPERF_BENCH_LABEL="ci-smoke" \
MLPERF_GIT_COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
MLPERF_TRACE_OVERHEAD_MAX_PCT=10 \
MLPERF_FAULT_OVERHEAD_MAX_PCT=10 \
MLPERF_WIRE_OVERHEAD_MAX_PCT=150 \
MLPERF_WIRE_CHAOS_OVERHEAD_MAX_PCT=25 \
MLPERF_REPLAY_OVERHEAD_MAX_PCT=25 \
MLPERF_JOURNAL_OVERHEAD_MAX_PCT=2000 \
cargo bench -p mlperf-bench

if [[ -f BENCH_PR10.json ]]; then
  echo "== bench-compare vs committed baseline (hot-path + trace-overhead gates fail) =="
  # The loadgen hot path (des_*, poisson_schedule, sample_indices) and the
  # trace-overhead trio (run_simulated_*) are HARD gates: a median
  # regression beyond the tolerance fails CI. Every other population stays
  # advisory (bench-compare prints WARNING lines) — shared CI machines are
  # noisy and those benches exist for trend-watching, not gating.
  #
  # Tolerance: 50%. Recorded headroom: the worst gated delta observed on
  # the CI container when this gate was flipped to failing was +15.4%
  # (des_single_stream_10000_queries), so 50% absorbs runner noise while
  # still catching an accidental O(n) slip (those show up as >2x).
  # Refresh the baseline (copy target/bench-current.json over
  # BENCH_PR10.json) when a slowdown is intentional.
  cargo run -q -p mlperf-harness --bin bench-compare -- \
      "$(pwd)/BENCH_PR10.json" "$BENCH_JSON" --tolerance 50 \
      --fail-on des_server --fail-on des_single_stream \
      --fail-on poisson_schedule --fail-on sample_indices \
      --fail-on run_simulated
fi

echo "CI green."

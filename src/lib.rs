//! MLPerf Inference v0.5 benchmark system — Rust reproduction.
//!
//! Umbrella crate re-exporting the whole workspace. Start with the
//! [`loadgen`] module (the paper's primary contribution), drive it against
//! the simulated [`sut`] fleet or your own implementation of
//! [`loadgen::sut::SimSut`], and score accuracy runs with [`metrics`].
//!
//! ```
//! use mlperf_inference::loadgen::config::TestSettings;
//! use mlperf_inference::loadgen::des::run_simulated;
//! use mlperf_inference::loadgen::qsl::MemoryQsl;
//! use mlperf_inference::loadgen::sut::FixedLatencySut;
//! use mlperf_inference::loadgen::time::Nanos;
//!
//! let settings = TestSettings::single_stream()
//!     .with_min_query_count(64)
//!     .with_min_duration(Nanos::from_millis(1));
//! let mut qsl = MemoryQsl::new("toy", 32, 32);
//! let mut sut = FixedLatencySut::new("demo", Nanos::from_micros(100));
//! let outcome = run_simulated(&settings, &mut qsl, &mut sut)?;
//! assert!(outcome.result.is_valid());
//! # Ok::<(), mlperf_inference::loadgen::LoadGenError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mlperf_audit as audit;
pub use mlperf_datasets as datasets;
pub use mlperf_loadgen as loadgen;
pub use mlperf_metrics as metrics;
pub use mlperf_models as models;
pub use mlperf_nn as nn;
pub use mlperf_stats as stats;
pub use mlperf_submission as submission;
pub use mlperf_sut as sut;
pub use mlperf_tensor as tensor;
pub use mlperf_trace as trace;
pub use mlperf_wire as wire;
